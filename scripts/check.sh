#!/usr/bin/env bash
# check.sh is the repository's full verification gate, run locally and by
# CI (.github/workflows/ci.yml): build, formatting, go vet, the custom
# bplint static-analysis suite (internal/analysis), and race-enabled tests.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go vet ./..."
go vet ./...

echo "==> bplint ./... (all nineteen analyzers, concurrency + twin certification included)"
go run ./cmd/bplint ./...

echo "==> bplint allow audit (every waiver carries a justification)"
go run ./cmd/bplint -allows

echo "==> seeded-drift regression (edited scalar statement must yield exactly one twinsync finding)"
go test -run 'TestSeededDrift' ./internal/analysis

echo "==> BPTRACE1 codec fuzz smoke (10s round-trip/fixed-point search)"
go test -run '^$' -fuzz FuzzCodecRoundTrip -fuzztime=10s ./internal/trace

echo "==> concurrency certification: -race runtime twins of the static analyzers"
# frozen: recordings are replayed concurrently with no synchronization —
# sound only if nothing writes them after publication.
go test -race -run 'TestConcurrentReplay|TestConcurrentBranchCursors' ./internal/tracestore ./internal/trace
# oncepublish: memo cells are published under sync.Once and hammered from
# many goroutines.
go test -race -run 'TestTimingMemoConcurrentStress' ./internal/experiments
# sharedcapture: the worker pool's captured shared state, lock-dominated.
go test -race -run 'TestRunCellsSharedCaptureStress' ./internal/experiments
# singleflight: concurrent cold lookups of one cell coalesce into exactly
# one computation and one store write.
go test -race -run 'TestConcurrentColdCoalesce' ./internal/resultstore

echo "==> replay equivalence (live vs recorded streams, race-enabled)"
go test -race -run 'TestReplayEquivalence|TestConcurrentReplay|TestClassifiedReplay' ./internal/tracestore

echo "==> branch fast-path equivalence (batched vs instruction-at-a-time, race-enabled)"
go test -race -run 'TestFastPathEquivalence' ./internal/funcsim
go test -race -run 'TestBranchIndexMatchesStream|TestCodecPreservesBranchIndex|TestConcurrentBranchCursors' ./internal/trace

echo "==> timing fast-path equivalence (batched/sidecar/memo vs instruction-at-a-time live-cache, race-enabled)"
go test -race -run 'TestTimingFastPathEquivalence|TestSidecarFallback|TestSlotRingWraparound' ./internal/pipeline
go test -race -run 'TestTimingMemoEquivalence|TestTimingMemoDeduplicates|TestTimingMemoConcurrentStress' ./internal/experiments
go test -race -run 'TestNextInstsMatchesStream|TestNextInstsInterleavesWithNext|TestNextInstsProtocolMixPanics' ./internal/trace

echo "==> fused timing equivalence (RunMany vs per-cell reference, geometry guard, scheduler parity, race-enabled)"
go test -race -run 'TestFusedTimingEquivalence|TestFusedTimingLiveCaches|TestFusedTimingGeometryGuard' ./internal/pipeline
go test -race -run 'TestFusedTimingPlan|TestFusedTimingGeometryGrouping|TestFusedTimingMemoAccounting|TestFusedTimingStoreFlow' ./internal/experiments

echo "==> cell store equivalence + robustness (store-served cells bit-identical; corrupt/truncated/stale entries recomputed, race-enabled)"
go test -race ./internal/resultstore
go test -race -run 'TestTimingStoreEquivalence|TestTimingStoreWarmDoesNotSimulate|TestAccuracyStoreEquivalence|TestStoreKeySeparatesFamilies|TestRunCellsPanicKey' ./internal/experiments

echo "==> batched-loop allocation bounds (no race: alloc counts need a plain build)"
go test -run 'TestBatchedRunAllocs' ./internal/funcsim
go test -run 'TestBatchedTimingRunAllocs|TestFusedTimingAllocs' ./internal/pipeline

echo "==> go test -race ./..."
go test -race ./...

echo "All checks passed."
