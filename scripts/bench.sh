#!/usr/bin/env bash
# bench.sh tracks the record/replay trace layer's performance trajectory.
# It runs the trace benchmarks from bench_test.go and writes BENCH_trace.json
# at the repo root: per-instruction generate/replay cost and the grid-level
# accuracy-sweep comparison (regenerate per cell vs record once + replay),
# whose speedup is the number the tentpole refactor is accountable for.
#
# Usage: scripts/bench.sh [benchtime]   (default 3x per sweep iteration)
set -euo pipefail
cd "$(dirname "$0")/.."

benchtime=${1:-3x}
out=BENCH_trace.json

echo "==> go test -bench (trace layer, benchtime=$benchtime)"
raw=$(go test -run '^$' \
    -bench '^(BenchmarkGenerateStream|BenchmarkReplayStream)$' \
    -benchtime 2000000x . &&
    go test -run '^$' \
        -bench '^(BenchmarkAccuracySweepRegenerate|BenchmarkAccuracySweepReplay)$' \
        -benchtime "$benchtime" .)
echo "$raw"

# ns/op for one named benchmark from the combined `go test -bench` output.
nsop() {
    echo "$raw" | awk -v name="$1" '$1 ~ "^"name"(-[0-9]+)?$" { print $3; exit }'
}

gen=$(nsop BenchmarkGenerateStream)
rep=$(nsop BenchmarkReplayStream)
regen=$(nsop BenchmarkAccuracySweepRegenerate)
replay=$(nsop BenchmarkAccuracySweepReplay)
for v in "$gen" "$rep" "$regen" "$replay"; do
    if [ -z "$v" ]; then
        echo "bench.sh: missing benchmark result in output above" >&2
        exit 1
    fi
done

awk -v gen="$gen" -v rep="$rep" -v regen="$regen" -v replay="$replay" \
    'BEGIN {
        printf "{\n"
        printf "  \"generate_stream_ns_per_inst\": %.2f,\n", gen
        printf "  \"replay_stream_ns_per_inst\": %.2f,\n", rep
        printf "  \"stream_speedup\": %.2f,\n", gen / rep
        printf "  \"accuracy_sweep_regenerate_ns\": %.0f,\n", regen
        printf "  \"accuracy_sweep_replay_ns\": %.0f,\n", replay
        printf "  \"accuracy_sweep_speedup\": %.2f\n", regen / replay
        printf "}\n"
    }' > "$out"

echo "==> wrote $out"
cat "$out"

speedup=$(awk -v a="$regen" -v b="$replay" 'BEGIN { print (a / b >= 1.5) ? "ok" : "low" }')
if [ "$speedup" != "ok" ]; then
    echo "bench.sh: accuracy-sweep speedup below 1.5x" >&2
    exit 1
fi
