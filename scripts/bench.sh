#!/usr/bin/env bash
# bench.sh tracks the trace layer's performance trajectory. It runs the
# trace and branch-replay benchmarks from bench_test.go and writes two JSON
# files at the repo root:
#
#   BENCH_trace.json        per-instruction generate/replay cost and the
#                           grid-level regenerate-vs-replay comparison
#                           introduced with the record/replay layer.
#   BENCH_branchreplay.json the branch-indexed batch fast path: sweep time
#                           through the batched loop vs the same sweep
#                           forced down the instruction-at-a-time path,
#                           batch fill throughput, and the speedup against
#                           the frozen pre-fast-path baseline.
#   BENCH_timing.json       the timing-simulator fast path: one benchmark's
#                           design-point grid column (19 cells, duplicates
#                           included) through the batched+sidecar+memo path
#                           vs the same cells simulated independently with
#                           live caches, and the speedup against the frozen
#                           pre-fast-path baseline.
#
# Usage: scripts/bench.sh [benchtime]   (default 5x per sweep iteration)
set -euo pipefail
cd "$(dirname "$0")/.."

benchtime=${1:-5x}

# BenchmarkAccuracySweepReplay as of the record/replay PR (commit 95d9aff,
# recording per sweep + instruction-at-a-time replay), measured on the dev
# machine whose numbers BENCH_trace.json has tracked since. Frozen so the
# fast path's headline speedup does not drift as the files regenerate.
pr2_baseline_ns=61348139

# BenchmarkTimingSweepSlow as of the timing fast-path PR (every cell
# simulated independently, instruction-at-a-time dispatch, live caches),
# measured on the same machine. Frozen for the same reason: the headline
# timing speedup is against the data path the fast path replaced, not
# against whatever the slow twin measures after later refactors.
timing_baseline_ns=247296679

echo "==> go test -bench (trace layer + branch replay, benchtime=$benchtime)"
raw=$(go test -run '^$' \
    -bench '^(BenchmarkGenerateStream|BenchmarkReplayStream)$' \
    -benchtime 2000000x . &&
    go test -run '^$' \
        -bench '^BenchmarkBranchBatchFill$' \
        -benchtime 500000x . &&
    go test -run '^$' \
        -bench '^(BenchmarkAccuracySweepRegenerate|BenchmarkAccuracySweepReplay|BenchmarkAccuracySweepReplaySlowPath)$' \
        -benchtime "$benchtime" . &&
    go test -run '^$' \
        -bench '^(BenchmarkTimingSweepFast|BenchmarkTimingSweepSlow)$' \
        -benchtime "$benchtime" .)
echo "$raw"

# ns/op for one named benchmark from the combined `go test -bench` output.
nsop() {
    echo "$raw" | awk -v name="$1" '$1 ~ "^"name"(-[0-9]+)?$" { print $3; exit }'
}

gen=$(nsop BenchmarkGenerateStream)
rep=$(nsop BenchmarkReplayStream)
fill=$(nsop BenchmarkBranchBatchFill)
regen=$(nsop BenchmarkAccuracySweepRegenerate)
replay=$(nsop BenchmarkAccuracySweepReplay)
slowpath=$(nsop BenchmarkAccuracySweepReplaySlowPath)
tfast=$(nsop BenchmarkTimingSweepFast)
tslow=$(nsop BenchmarkTimingSweepSlow)
for v in "$gen" "$rep" "$fill" "$regen" "$replay" "$slowpath" "$tfast" "$tslow"; do
    if [ -z "$v" ]; then
        echo "bench.sh: missing benchmark result in output above" >&2
        exit 1
    fi
done

awk -v gen="$gen" -v rep="$rep" -v regen="$regen" -v replay="$replay" \
    'BEGIN {
        printf "{\n"
        printf "  \"generate_stream_ns_per_inst\": %.2f,\n", gen
        printf "  \"replay_stream_ns_per_inst\": %.2f,\n", rep
        printf "  \"stream_speedup\": %.2f,\n", gen / rep
        printf "  \"accuracy_sweep_regenerate_ns\": %.0f,\n", regen
        printf "  \"accuracy_sweep_replay_ns\": %.0f,\n", replay
        printf "  \"accuracy_sweep_speedup\": %.2f\n", regen / replay
        printf "}\n"
    }' > BENCH_trace.json

awk -v fast="$replay" -v slow="$slowpath" -v fill="$fill" -v base="$pr2_baseline_ns" \
    'BEGIN {
        printf "{\n"
        printf "  \"accuracy_sweep_fastpath_ns\": %.0f,\n", fast
        printf "  \"accuracy_sweep_slowpath_ns\": %.0f,\n", slow
        printf "  \"fastpath_vs_slowpath_speedup\": %.2f,\n", slow / fast
        printf "  \"pr2_baseline_sweep_ns\": %.0f,\n", base
        printf "  \"speedup_vs_pr2_baseline\": %.2f,\n", base / fast
        printf "  \"branch_fill_ns_per_branch\": %.2f,\n", fill
        printf "  \"branch_fill_branches_per_sec\": %.0f\n", 1e9 / fill
        printf "}\n"
    }' > BENCH_branchreplay.json

awk -v fast="$tfast" -v slow="$tslow" -v base="$timing_baseline_ns" \
    'BEGIN {
        printf "{\n"
        printf "  \"timing_sweep_fastpath_ns\": %.0f,\n", fast
        printf "  \"timing_sweep_slowpath_ns\": %.0f,\n", slow
        printf "  \"fastpath_vs_slowpath_speedup\": %.2f,\n", slow / fast
        printf "  \"pr4_baseline_sweep_ns\": %.0f,\n", base
        printf "  \"speedup_vs_pr4_baseline\": %.2f\n", base / fast
        printf "}\n"
    }' > BENCH_timing.json

echo "==> wrote BENCH_trace.json"
cat BENCH_trace.json
echo "==> wrote BENCH_branchreplay.json"
cat BENCH_branchreplay.json
echo "==> wrote BENCH_timing.json"
cat BENCH_timing.json

gate() { # gate <num> <den> <min> <label>
    local ok
    ok=$(awk -v a="$1" -v b="$2" -v m="$3" 'BEGIN { print (a / b >= m) ? "ok" : "low" }')
    if [ "$ok" != "ok" ]; then
        echo "bench.sh: $4" >&2
        exit 1
    fi
}
gate "$regen" "$replay" 1.5 "accuracy-sweep speedup (regenerate vs replay) below 1.5x"
gate "$slowpath" "$replay" 2.0 "branch fast path below 2x over the instruction-at-a-time sweep"
gate "$pr2_baseline_ns" "$replay" 3.0 "branch fast path below 3x over the frozen PR 2 sweep baseline"
gate "$tslow" "$tfast" 2.0 "timing fast path below 2x over the independent-cell live-cache sweep"
gate "$timing_baseline_ns" "$tfast" 2.0 "timing fast path below 2x over the frozen pre-fast-path timing baseline"
