#!/usr/bin/env bash
# bench.sh tracks the trace layer's performance trajectory. It runs the
# trace and branch-replay benchmarks from bench_test.go and writes two JSON
# files at the repo root:
#
#   BENCH_trace.json        per-instruction generate/replay cost and the
#                           grid-level regenerate-vs-replay comparison
#                           introduced with the record/replay layer.
#   BENCH_branchreplay.json the branch-indexed batch fast path: sweep time
#                           through the batched loop vs the same sweep
#                           forced down the instruction-at-a-time path,
#                           batch fill throughput, and the speedup against
#                           the frozen pre-fast-path baseline.
#   BENCH_timing.json       the timing-simulator fast path: one benchmark's
#                           design-point grid column (19 cells, duplicates
#                           included) through the batched+sidecar+memo path
#                           vs the same cells simulated independently with
#                           live caches, and the speedup against the frozen
#                           pre-fast-path baseline.
#   BENCH_grid.json         the persistent cell store + planner layers: the
#                           distinct-cell grid column simulated cold into a
#                           fresh store vs served warm from disk, the same
#                           plan sharded across workers vs serial, and an
#                           end-to-end cmd/reproduce cold-vs-warm wall-clock
#                           comparison with byte-identical stdout enforced.
#   BENCH_fusion.json       the grid-fused accuracy sweeps: one benchmark's
#                           27-lane accuracy column (3 kinds x 9 budgets)
#                           through one fused RunMany trace pass vs the same
#                           lanes run per-cell, plus a cold cmd/reproduce
#                           fused-vs- -nofuse wall-clock comparison with
#                           byte-identical stdout enforced.
#   BENCH_timingfusion.json the grid-fused timing sweeps: a 12-lane pipeline
#                           column (4 depths x 3 gshare budgets) through one
#                           fused RunTimingMany trace pass vs the same lanes
#                           run per-cell down the sidecar fast path, and the
#                           end-to-end cold fused-vs- -nofuse reproduce
#                           ratio now that both cell families fuse.
#
# Every JSON records the machine's core count and the effective GOMAXPROCS:
# the parallel comparisons (shard ratio, wall clocks) only compare across
# runs on similar machines.
#
# Usage: scripts/bench.sh [benchtime]   (default 5x per sweep iteration)
set -euo pipefail
cd "$(dirname "$0")/.."

benchtime=${1:-5x}

# BenchmarkAccuracySweepReplay as of the record/replay PR (commit 95d9aff,
# recording per sweep + instruction-at-a-time replay), measured on the dev
# machine whose numbers BENCH_trace.json has tracked since. Frozen so the
# fast path's headline speedup does not drift as the files regenerate.
pr2_baseline_ns=61348139

# BenchmarkTimingSweepSlow as of the timing fast-path PR (every cell
# simulated independently, instruction-at-a-time dispatch, live caches),
# measured on the same machine. Frozen for the same reason: the headline
# timing speedup is against the data path the fast path replaced, not
# against whatever the slow twin measures after later refactors.
timing_baseline_ns=247296679

echo "==> go test -bench (trace layer + branch replay, benchtime=$benchtime)"
raw=$(go test -run '^$' \
    -bench '^(BenchmarkGenerateStream|BenchmarkReplayStream)$' \
    -benchtime 2000000x . &&
    go test -run '^$' \
        -bench '^BenchmarkBranchBatchFill$' \
        -benchtime 500000x . &&
    go test -run '^$' \
        -bench '^(BenchmarkAccuracySweepRegenerate|BenchmarkAccuracySweepReplay|BenchmarkAccuracySweepReplaySlowPath)$' \
        -benchtime "$benchtime" . &&
    go test -run '^$' \
        -bench '^(BenchmarkTimingSweepFast|BenchmarkTimingSweepSlow)$' \
        -benchtime "$benchtime" . &&
    go test -run '^$' \
        -bench '^(BenchmarkGridColdStore|BenchmarkGridWarmStore|BenchmarkGridSharded|BenchmarkGridSerial)$' \
        -benchtime "$benchtime" . &&
    go test -run '^$' \
        -bench '^(BenchmarkFusedSweep|BenchmarkFusedSweepPerCell)$' \
        -benchtime "$benchtime" . &&
    go test -run '^$' \
        -bench '^(BenchmarkFusedTimingSweep|BenchmarkFusedTimingSweepPerCell)$' \
        -benchtime "$benchtime" .)
echo "$raw"

# ns/op for one named benchmark from the combined `go test -bench` output.
nsop() {
    echo "$raw" | awk -v name="$1" '$1 ~ "^"name"(-[0-9]+)?$" { print $3; exit }'
}

gen=$(nsop BenchmarkGenerateStream)
rep=$(nsop BenchmarkReplayStream)
fill=$(nsop BenchmarkBranchBatchFill)
regen=$(nsop BenchmarkAccuracySweepRegenerate)
replay=$(nsop BenchmarkAccuracySweepReplay)
slowpath=$(nsop BenchmarkAccuracySweepReplaySlowPath)
tfast=$(nsop BenchmarkTimingSweepFast)
tslow=$(nsop BenchmarkTimingSweepSlow)
gcold=$(nsop BenchmarkGridColdStore)
gwarm=$(nsop BenchmarkGridWarmStore)
gshard=$(nsop BenchmarkGridSharded)
gserial=$(nsop BenchmarkGridSerial)
ffused=$(nsop BenchmarkFusedSweep)
fpercell=$(nsop BenchmarkFusedSweepPerCell)
tffused=$(nsop BenchmarkFusedTimingSweep)
tfpercell=$(nsop BenchmarkFusedTimingSweepPerCell)
for v in "$gen" "$rep" "$fill" "$regen" "$replay" "$slowpath" "$tfast" "$tslow" \
    "$gcold" "$gwarm" "$gshard" "$gserial" "$ffused" "$fpercell" \
    "$tffused" "$tfpercell"; do
    if [ -z "$v" ]; then
        echo "bench.sh: missing benchmark result in output above" >&2
        exit 1
    fi
done

cores=$(nproc)
# The effective GOMAXPROCS of the benchmark processes: the env override when
# set, else the Go default of one P per core.
gomaxprocs=${GOMAXPROCS:-$cores}

awk -v gen="$gen" -v rep="$rep" -v regen="$regen" -v replay="$replay" \
    -v cores="$cores" -v gmp="$gomaxprocs" \
    'BEGIN {
        printf "{\n"
        printf "  \"generate_stream_ns_per_inst\": %.2f,\n", gen
        printf "  \"replay_stream_ns_per_inst\": %.2f,\n", rep
        printf "  \"stream_speedup\": %.2f,\n", gen / rep
        printf "  \"accuracy_sweep_regenerate_ns\": %.0f,\n", regen
        printf "  \"accuracy_sweep_replay_ns\": %.0f,\n", replay
        printf "  \"accuracy_sweep_speedup\": %.2f,\n", regen / replay
        printf "  \"cores\": %d,\n", cores
        printf "  \"gomaxprocs\": %d\n", gmp
        printf "}\n"
    }' > BENCH_trace.json

awk -v fast="$replay" -v slow="$slowpath" -v fill="$fill" -v base="$pr2_baseline_ns" \
    -v cores="$cores" -v gmp="$gomaxprocs" \
    'BEGIN {
        printf "{\n"
        printf "  \"accuracy_sweep_fastpath_ns\": %.0f,\n", fast
        printf "  \"accuracy_sweep_slowpath_ns\": %.0f,\n", slow
        printf "  \"fastpath_vs_slowpath_speedup\": %.2f,\n", slow / fast
        printf "  \"pr2_baseline_sweep_ns\": %.0f,\n", base
        printf "  \"speedup_vs_pr2_baseline\": %.2f,\n", base / fast
        printf "  \"branch_fill_ns_per_branch\": %.2f,\n", fill
        printf "  \"branch_fill_branches_per_sec\": %.0f,\n", 1e9 / fill
        printf "  \"cores\": %d,\n", cores
        printf "  \"gomaxprocs\": %d\n", gmp
        printf "}\n"
    }' > BENCH_branchreplay.json

awk -v fast="$tfast" -v slow="$tslow" -v base="$timing_baseline_ns" \
    -v cores="$cores" -v gmp="$gomaxprocs" \
    'BEGIN {
        printf "{\n"
        printf "  \"timing_sweep_fastpath_ns\": %.0f,\n", fast
        printf "  \"timing_sweep_slowpath_ns\": %.0f,\n", slow
        printf "  \"fastpath_vs_slowpath_speedup\": %.2f,\n", slow / fast
        printf "  \"pr4_baseline_sweep_ns\": %.0f,\n", base
        printf "  \"speedup_vs_pr4_baseline\": %.2f,\n", base / fast
        printf "  \"cores\": %d,\n", cores
        printf "  \"gomaxprocs\": %d\n", gmp
        printf "}\n"
    }' > BENCH_timing.json

# End-to-end incremental reproduce: the same binary, the same flags, a
# fresh store directory — run twice. The first run simulates every cell and
# writes the store; the second serves every cell from disk. Stdout must be
# byte-for-byte identical (the store is invisible to results), and the warm
# run is the acceptance criterion's >=5x.
echo "==> cmd/reproduce cold vs warm (persistent store)"
workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT
go build -o "$workdir/reproduce" ./cmd/reproduce
repro_insts=400000
repro_warmup=100000
t0=$(date +%s%N)
"$workdir/reproduce" -insts $repro_insts -warmup $repro_warmup \
    -store "$workdir/cellstore" > "$workdir/cold.out"
t1=$(date +%s%N)
"$workdir/reproduce" -insts $repro_insts -warmup $repro_warmup \
    -store "$workdir/cellstore" > "$workdir/warm.out"
t2=$(date +%s%N)
cold_ns=$((t1 - t0))
warm_ns=$((t2 - t1))
if ! cmp -s "$workdir/cold.out" "$workdir/warm.out"; then
    echo "bench.sh: warm reproduce stdout differs from cold (store changed results)" >&2
    exit 1
fi
echo "    cold ${cold_ns}ns, warm ${warm_ns}ns, stdout byte-identical"

# Cold fused vs cold -nofuse: the same binary with the store disabled, so
# both runs simulate every cell — accuracy and timing cells alike run one
# trace pass per (benchmark, geometry) group fused, one per cell under
# -nofuse. Stdout must be byte-for-byte identical (fusion is an execution
# strategy, not an identity). The wall-clock ratio is gated >=1.0 within
# noise below: PR 8's accuracy-only fusion measured 0.94 here because the
# then-unfused timing cells dominated cold wall-clock (Amdahl) and the
# single-sample ratio sat inside the machine's noise band; with timing
# fused too the ratio is decisively above 1.
echo "==> cmd/reproduce fused vs -nofuse (cold, no store)"
t3=$(date +%s%N)
"$workdir/reproduce" -insts $repro_insts -warmup $repro_warmup \
    -nostore > "$workdir/fused.out"
t4=$(date +%s%N)
"$workdir/reproduce" -insts $repro_insts -warmup $repro_warmup \
    -nostore -nofuse > "$workdir/nofuse.out"
t5=$(date +%s%N)
fusedrepro_ns=$((t4 - t3))
nofuserepro_ns=$((t5 - t4))
if ! cmp -s "$workdir/fused.out" "$workdir/nofuse.out"; then
    echo "bench.sh: -nofuse reproduce stdout differs from fused (fusion changed results)" >&2
    exit 1
fi
echo "    fused ${fusedrepro_ns}ns, nofuse ${nofuserepro_ns}ns, stdout byte-identical"

awk -v gcold="$gcold" -v gwarm="$gwarm" -v gshard="$gshard" -v gserial="$gserial" \
    -v rcold="$cold_ns" -v rwarm="$warm_ns" -v cores="$cores" -v gmp="$gomaxprocs" \
    'BEGIN {
        printf "{\n"
        printf "  \"grid_cold_store_ns\": %.0f,\n", gcold
        printf "  \"grid_warm_store_ns\": %.0f,\n", gwarm
        printf "  \"warm_store_speedup\": %.2f,\n", gcold / gwarm
        printf "  \"grid_sharded_ns\": %.0f,\n", gshard
        printf "  \"grid_serial_ns\": %.0f,\n", gserial
        printf "  \"shard_ratio\": %.2f,\n", gserial / gshard
        printf "  \"cores\": %d,\n", cores
        printf "  \"gomaxprocs\": %d,\n", gmp
        printf "  \"reproduce_cold_ns\": %.0f,\n", rcold
        printf "  \"reproduce_warm_ns\": %.0f,\n", rwarm
        printf "  \"reproduce_warm_speedup\": %.2f,\n", rcold / rwarm
        printf "  \"reproduce_stdout_identical\": true\n"
        printf "}\n"
    }' > BENCH_grid.json

# The fused lane set is bench_test.go's fusionLaneKinds x fusionBudgets:
# 3 kinds x 9 budgets = 27 lanes over one benchmark's recorded stream.
awk -v fused="$ffused" -v percell="$fpercell" -v cores="$cores" -v gmp="$gomaxprocs" \
    -v rfused="$fusedrepro_ns" -v rnofuse="$nofuserepro_ns" \
    'BEGIN {
        printf "{\n"
        printf "  \"fused_sweep_ns\": %.0f,\n", fused
        printf "  \"percell_sweep_ns\": %.0f,\n", percell
        printf "  \"fused_speedup\": %.2f,\n", percell / fused
        printf "  \"lanes\": 27,\n"
        printf "  \"reproduce_fused_cold_ns\": %.0f,\n", rfused
        printf "  \"reproduce_nofuse_cold_ns\": %.0f,\n", rnofuse
        printf "  \"reproduce_fused_ratio\": %.2f,\n", rnofuse / rfused
        printf "  \"reproduce_stdout_identical\": true,\n"
        printf "  \"cores\": %d,\n", cores
        printf "  \"gomaxprocs\": %d\n", gmp
        printf "}\n"
    }' > BENCH_fusion.json

# The fused timing lane set is bench_test.go's timingFusionLanes: pipeline
# depths {10,20,30,40} x gshare budgets {4K,16K,64K} = 12 lanes sharing the
# default cache geometry, so one trace pass and one sidecar serve the
# column. The end-to-end reproduce ratio repeats BENCH_fusion's measurement
# under the ratio's own gate now that both cell families fuse.
awk -v fused="$tffused" -v percell="$tfpercell" -v cores="$cores" -v gmp="$gomaxprocs" \
    -v rfused="$fusedrepro_ns" -v rnofuse="$nofuserepro_ns" \
    'BEGIN {
        printf "{\n"
        printf "  \"fused_timing_sweep_ns\": %.0f,\n", fused
        printf "  \"percell_timing_sweep_ns\": %.0f,\n", percell
        printf "  \"fused_speedup\": %.2f,\n", percell / fused
        printf "  \"lanes\": 12,\n"
        printf "  \"reproduce_fused_cold_ns\": %.0f,\n", rfused
        printf "  \"reproduce_nofuse_cold_ns\": %.0f,\n", rnofuse
        printf "  \"reproduce_fused_ratio\": %.2f,\n", rnofuse / rfused
        printf "  \"reproduce_stdout_identical\": true,\n"
        printf "  \"cores\": %d,\n", cores
        printf "  \"gomaxprocs\": %d\n", gmp
        printf "}\n"
    }' > BENCH_timingfusion.json

echo "==> wrote BENCH_trace.json"
cat BENCH_trace.json
echo "==> wrote BENCH_branchreplay.json"
cat BENCH_branchreplay.json
echo "==> wrote BENCH_timing.json"
cat BENCH_timing.json
echo "==> wrote BENCH_grid.json"
cat BENCH_grid.json
echo "==> wrote BENCH_fusion.json"
cat BENCH_fusion.json
echo "==> wrote BENCH_timingfusion.json"
cat BENCH_timingfusion.json

gate() { # gate <num> <den> <min> <label>
    local ok
    ok=$(awk -v a="$1" -v b="$2" -v m="$3" 'BEGIN { print (a / b >= m) ? "ok" : "low" }')
    if [ "$ok" != "ok" ]; then
        echo "bench.sh: $4" >&2
        exit 1
    fi
}
gate "$regen" "$replay" 1.5 "accuracy-sweep speedup (regenerate vs replay) below 1.5x"
gate "$slowpath" "$replay" 2.0 "branch fast path below 2x over the instruction-at-a-time sweep"
gate "$pr2_baseline_ns" "$replay" 3.0 "branch fast path below 3x over the frozen PR 2 sweep baseline"
gate "$tslow" "$tfast" 2.0 "timing fast path below 2x over the independent-cell live-cache sweep"
gate "$timing_baseline_ns" "$tfast" 2.0 "timing fast path below 2x over the frozen pre-fast-path timing baseline"
gate "$gcold" "$gwarm" 5.0 "warm store below 5x over cold simulation+write-back"
gate "$cold_ns" "$warm_ns" 5.0 "warm reproduce below 5x over cold reproduce"
gate "$fpercell" "$ffused" 2.0 "fused accuracy sweep below 2x over the per-cell sweep"
gate "$tfpercell" "$tffused" 2.0 "fused timing sweep below 2x over the per-cell sweep"
# End-to-end, cold fusion must be >=1.0x of -nofuse within noise: 0.9 leaves
# room for single-sample wall-clock jitter while still catching a real
# regression like PR 8's accuracy-only 0.94 would signal today.
gate "$nofuserepro_ns" "$fusedrepro_ns" 0.9 "cold fused reproduce regressed -nofuse beyond noise"
# The scheduler gate adapts to the machine: with >=4 cores sharding must pay
# for itself (>=2x); on fewer cores the worker pool only has to not regress
# the serial plan (>=0.8x leaves room for scheduling noise).
if [ "$cores" -ge 4 ]; then
    gate "$gserial" "$gshard" 2.0 "sharded grid below 2x over serial on a $cores-core machine"
else
    echo "bench.sh: shard >=2x gate skipped: $cores cores (<4); applying serial no-regression bound only"
    gate "$gserial" "$gshard" 0.8 "sharded grid regressed the serial plan on a $cores-core machine"
fi
